// Package remset implements remembered sets for the generational
// collectors. An entry is an object (not a slot): the paper's Larceny
// remembers whole objects and rescans their fields at collection time
// (Section 8.4).
//
// Two representations are provided — a hash set and a sequential store
// buffer — because their trade-off is one of the ablations this repository
// measures. Both deduplicate: the SSB defers deduplication to scan time and
// preserves first-seen order when it does (the order in which the write
// barrier first recorded each object).
//
// Both representations sit on every collection's critical path, so neither
// allocates in steady state: the hash set is an open-addressing table of
// words that is cleared (not discarded) between collections, and the SSB
// deduplicates with reusable sorted scratch buffers instead of a per-scan
// Go map.
package remset

import (
	"slices"

	"rdgc/internal/heap"
)

// Set is a remembered set of object pointer words.
type Set interface {
	// Remember adds the object w points to.
	Remember(w heap.Word)
	// Contains reports whether w is currently in the set. It sits on the
	// verifier's path, not the mutator's, so it may be slower than Remember
	// (the SSB scans its whole buffer).
	Contains(w heap.Word) bool
	// ForEach visits each remembered object exactly once.
	ForEach(f func(w heap.Word))
	// Clear empties the set.
	Clear()
	// Len returns the current number of distinct entries (for the SSB this
	// forces deduplication).
	Len() int
	// Peak returns the largest Len observed at any Clear or Len call.
	Peak() int
}

// HashSet is the default remembered-set representation: an open-addressing
// hash table of pointer words with linear probing. Entries are always
// tagged pointer words, which are never zero, so the zero word marks an
// empty slot; Clear is a memset and the table is retained across
// collections, so steady-state collections allocate nothing.
type HashSet struct {
	table []heap.Word // power-of-two length; 0 = empty slot
	n     int
	peak  int
}

// hashSetMinCap is the initial table size; it must be a power of two.
const hashSetMinCap = 64

// NewHashSet creates an empty hash-based remembered set.
func NewHashSet() *HashSet { return &HashSet{} }

// hashWord is a 64-bit finalizer-style mix (splitmix64's output stage):
// pointer words differ mostly in a few middle bits, so every bit must
// influence the table index.
func hashWord(w heap.Word) uint64 {
	x := uint64(w)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Remember implements Set.
func (s *HashSet) Remember(w heap.Word) {
	if w == 0 {
		panic("remset: the zero word is not a valid entry")
	}
	if 4*(s.n+1) > 3*len(s.table) {
		s.grow()
	}
	mask := uint64(len(s.table) - 1)
	i := hashWord(w) & mask
	for {
		switch s.table[i] {
		case 0:
			s.table[i] = w
			s.n++
			if s.n > s.peak {
				s.peak = s.n
			}
			return
		case w:
			return
		}
		i = (i + 1) & mask
	}
}

func (s *HashSet) grow() {
	old := s.table
	newCap := hashSetMinCap
	if len(old) > 0 {
		newCap = 2 * len(old)
	}
	s.table = make([]heap.Word, newCap)
	mask := uint64(newCap - 1)
	for _, w := range old {
		if w == 0 {
			continue
		}
		i := hashWord(w) & mask
		for s.table[i] != 0 {
			i = (i + 1) & mask
		}
		s.table[i] = w
	}
}

// Contains implements Set with the same linear probe as Remember.
func (s *HashSet) Contains(w heap.Word) bool {
	if len(s.table) == 0 {
		return false
	}
	mask := uint64(len(s.table) - 1)
	for i := hashWord(w) & mask; ; i = (i + 1) & mask {
		switch s.table[i] {
		case 0:
			return false
		case w:
			return true
		}
	}
}

// ForEach implements Set. Visit order is table order, which is stable for a
// given insertion history (unlike a Go map's randomized iteration).
func (s *HashSet) ForEach(f func(w heap.Word)) {
	for _, w := range s.table {
		if w != 0 {
			f(w)
		}
	}
}

// Clear implements Set. The table is zeroed in place, not discarded.
func (s *HashSet) Clear() {
	clear(s.table)
	s.n = 0
}

// Len implements Set.
func (s *HashSet) Len() int { return s.n }

// Peak implements Set.
func (s *HashSet) Peak() int { return s.peak }

// SSB is a sequential store buffer: the write barrier appends without
// checking for duplicates, and scans deduplicate. This is the cheap-barrier
// representation used by several production collectors.
type SSB struct {
	buf []heap.Word

	// scratch and keep are reusable dedup workspaces; their capacity is
	// retained across collections so steady-state dedup allocates nothing.
	scratch []ssbEntry
	keep    []int32

	peak int
}

// ssbEntry pairs a buffered word with its first-seen position, so a sort by
// (word, position) exposes duplicates while remembering where the first
// occurrence sat. Positions are int32: a buffer of 2^31 entries would be a
// 16 GiB remembered set, far beyond any workload here.
type ssbEntry struct {
	w  heap.Word
	at int32
}

// NewSSB creates an empty sequential store buffer.
func NewSSB() *SSB { return &SSB{} }

// Remember implements Set.
func (s *SSB) Remember(w heap.Word) { s.buf = append(s.buf, w) }

// dedup compacts the buffer to distinct entries, preserving first-seen
// order: entries are sorted by (word, position), the first position of each
// distinct word is kept, and the survivors are rewritten in position order.
func (s *SSB) dedup() {
	if len(s.buf) > 1 {
		s.scratch = s.scratch[:0]
		for i, w := range s.buf {
			s.scratch = append(s.scratch, ssbEntry{w: w, at: int32(i)})
		}
		slices.SortFunc(s.scratch, func(a, b ssbEntry) int {
			switch {
			case a.w != b.w:
				if a.w < b.w {
					return -1
				}
				return 1
			case a.at != b.at:
				if a.at < b.at {
					return -1
				}
				return 1
			}
			return 0
		})
		s.keep = s.keep[:0]
		for i, e := range s.scratch {
			if i == 0 || e.w != s.scratch[i-1].w {
				s.keep = append(s.keep, e.at)
			}
		}
		slices.Sort(s.keep)
		// keep is ascending and the i-th kept position is >= i, so the
		// compaction below never overwrites an entry it has yet to read.
		for i, at := range s.keep {
			s.buf[i] = s.buf[at]
		}
		s.buf = s.buf[:len(s.keep)]
	}
	if len(s.buf) > s.peak {
		s.peak = len(s.buf)
	}
}

// Contains implements Set with a linear scan of the raw buffer; duplicates
// do not change membership, so no dedup pass is forced.
func (s *SSB) Contains(w heap.Word) bool {
	for _, e := range s.buf {
		if e == w {
			return true
		}
	}
	return false
}

// ForEach implements Set.
func (s *SSB) ForEach(f func(w heap.Word)) {
	s.dedup()
	for _, w := range s.buf {
		f(w)
	}
}

// Clear implements Set.
func (s *SSB) Clear() {
	s.dedup() // record the peak before discarding
	s.buf = s.buf[:0]
}

// Len implements Set.
func (s *SSB) Len() int {
	s.dedup()
	return len(s.buf)
}

// Peak implements Set.
func (s *SSB) Peak() int { return s.peak }
