package remset

import (
	"fmt"
	"math/rand"
	"testing"

	"rdgc/internal/heap"
)

// Property test: both Set representations must agree with a Go map oracle
// under randomized Remember/Contains/Len/ForEach/Clear sequences, including
// sequences that force the HashSet through several growths and the SSB
// through dedup cycles.

func randomPtr(rng *rand.Rand, distinct int) heap.Word {
	// A small pool forces duplicates; offsets are even so words are distinct
	// per (space, off) pair and never zero (pointers carry tag 1).
	n := rng.Intn(distinct)
	return heap.PtrWord(heap.SpaceID(n%7), (n/7)*2)
}

func TestSetsAgainstMapOracle(t *testing.T) {
	impls := []struct {
		name string
		mk   func() Set
	}{
		{"HashSet", func() Set { return NewHashSet() }},
		{"SSB", func() Set { return NewSSB() }},
	}
	for _, impl := range impls {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", impl.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				s := impl.mk()
				oracle := map[heap.Word]bool{}
				maxLen := 0
				for op := 0; op < 3000; op++ {
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4: // insert, duplicates likely
						w := randomPtr(rng, 400)
						s.Remember(w)
						oracle[w] = true
						if len(oracle) > maxLen {
							maxLen = len(oracle)
						}
					case 5, 6: // membership, both present and absent words
						w := randomPtr(rng, 800)
						if got, want := s.Contains(w), oracle[w]; got != want {
							t.Fatalf("op %d: Contains(%#x) = %v, oracle %v", op, uint64(w), got, want)
						}
					case 7: // cardinality
						if got := s.Len(); got != len(oracle) {
							t.Fatalf("op %d: Len = %d, oracle %d", op, got, len(oracle))
						}
					case 8: // iterate: every oracle member exactly once
						visited := map[heap.Word]int{}
						s.ForEach(func(w heap.Word) { visited[w]++ })
						if len(visited) != len(oracle) {
							t.Fatalf("op %d: ForEach visited %d words, oracle %d", op, len(visited), len(oracle))
						}
						for w, n := range visited {
							if n != 1 {
								t.Fatalf("op %d: ForEach visited %#x %d times", op, uint64(w), n)
							}
							if !oracle[w] {
								t.Fatalf("op %d: ForEach visited %#x not in oracle", op, uint64(w))
							}
						}
					case 9:
						if rng.Intn(8) == 0 { // occasional clear
							s.Clear()
							oracle = map[heap.Word]bool{}
						}
					}
				}
				if s.Len() != len(oracle) {
					t.Fatalf("final Len = %d, oracle %d", s.Len(), len(oracle))
				}
				if peak := s.Peak(); peak < maxLen {
					t.Errorf("Peak = %d, but %d distinct entries were live at once", peak, maxLen)
				}
			})
		}
	}
}

// TestHashSetGrowthKeepsMembers drives the set through several table
// growths and checks no member is lost or invented.
func TestHashSetGrowthKeepsMembers(t *testing.T) {
	s := NewHashSet()
	const n = 10 * hashSetMinCap
	for i := 0; i < n; i++ {
		s.Remember(heap.PtrWord(heap.SpaceID(i%31), (i/31)*2))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		if !s.Contains(heap.PtrWord(heap.SpaceID(i%31), (i/31)*2)) {
			t.Fatalf("entry %d lost across growth", i)
		}
	}
	if s.Contains(heap.PtrWord(40, 2)) {
		t.Error("Contains invented a member")
	}
}

// TestIteratePathDoesNotAllocate guards the collection-critical iterate
// path of both representations: once warm, ForEach (and the SSB's dedup
// inside it) must be allocation-free.
func TestIteratePathDoesNotAllocate(t *testing.T) {
	sink := 0
	t.Run("HashSet", func(t *testing.T) {
		s := NewHashSet()
		for i := 0; i < 500; i++ {
			s.Remember(heap.PtrWord(heap.SpaceID(i%5), (i/5)*2))
		}
		allocs := testing.AllocsPerRun(20, func() {
			s.ForEach(func(heap.Word) { sink++ })
		})
		if allocs != 0 {
			t.Errorf("HashSet.ForEach allocates %.0f objects/run, want 0", allocs)
		}
	})
	t.Run("SSB", func(t *testing.T) {
		s := NewSSB()
		fill := func() {
			for i := 0; i < 500; i++ {
				s.Remember(heap.PtrWord(heap.SpaceID(i%5), ((i/5)%50)*2))
			}
		}
		fill()
		s.ForEach(func(heap.Word) {}) // warmup: scratch buffers grow once
		s.Clear()
		fill()
		allocs := testing.AllocsPerRun(20, func() {
			s.ForEach(func(heap.Word) { sink++ })
		})
		if allocs != 0 {
			t.Errorf("SSB.ForEach allocates %.0f objects/run, want 0", allocs)
		}
	})
	_ = sink
}
