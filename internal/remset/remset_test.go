package remset

import (
	"testing"
	"testing/quick"

	"rdgc/internal/heap"
)

func impls() map[string]func() Set {
	return map[string]func() Set{
		"hashset": func() Set { return NewHashSet() },
		"ssb":     func() Set { return NewSSB() },
	}
}

func TestRememberDeduplicates(t *testing.T) {
	for name, mk := range impls() {
		s := mk()
		w := heap.PtrWord(1, 64)
		s.Remember(w)
		s.Remember(w)
		s.Remember(w)
		if got := s.Len(); got != 1 {
			t.Errorf("%s: Len = %d after duplicate Remembers, want 1", name, got)
		}
		count := 0
		s.ForEach(func(heap.Word) { count++ })
		if count != 1 {
			t.Errorf("%s: ForEach visited %d, want 1", name, count)
		}
	}
}

func TestClearAndPeak(t *testing.T) {
	for name, mk := range impls() {
		s := mk()
		for i := 0; i < 10; i++ {
			s.Remember(heap.PtrWord(1, i*8))
		}
		if s.Len() != 10 {
			t.Errorf("%s: Len = %d, want 10", name, s.Len())
		}
		s.Clear()
		if s.Len() != 0 {
			t.Errorf("%s: Len after Clear = %d", name, s.Len())
		}
		if s.Peak() < 10 {
			t.Errorf("%s: Peak = %d, want >= 10", name, s.Peak())
		}
		// Peak persists across Clear.
		s.Remember(heap.PtrWord(1, 0))
		if s.Peak() < 10 {
			t.Errorf("%s: Peak dropped to %d after reuse", name, s.Peak())
		}
	}
}

func TestRepresentationsAgree(t *testing.T) {
	f := func(offs []uint16) bool {
		hs, ssb := NewHashSet(), NewSSB()
		for _, o := range offs {
			w := heap.PtrWord(2, int(o))
			hs.Remember(w)
			ssb.Remember(w)
		}
		if hs.Len() != ssb.Len() {
			return false
		}
		seen := map[heap.Word]bool{}
		ssb.ForEach(func(w heap.Word) { seen[w] = true })
		ok := true
		hs.ForEach(func(w heap.Word) {
			if !seen[w] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSSBPreservesFirstSeenOrder(t *testing.T) {
	s := NewSSB()
	ws := []heap.Word{heap.PtrWord(1, 8), heap.PtrWord(1, 0), heap.PtrWord(1, 8), heap.PtrWord(1, 16)}
	for _, w := range ws {
		s.Remember(w)
	}
	var got []heap.Word
	s.ForEach(func(w heap.Word) { got = append(got, w) })
	want := []heap.Word{heap.PtrWord(1, 8), heap.PtrWord(1, 0), heap.PtrWord(1, 16)}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}
