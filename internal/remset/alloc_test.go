package remset

import (
	"testing"

	"rdgc/internal/heap"
)

// visitCount is a package-level sink so the visitor closure below is a
// single static allocation, keeping the measured cycle's count at the sets'
// own allocations.
var visitCount int

var countVisitor = func(heap.Word) { visitCount++ }

// barrierLoad simulates one inter-collection window of write-barrier
// traffic: repeated Remembers (with duplicates) followed by a scan and a
// Clear, which is exactly the per-minor-collection hot path.
func barrierLoad(s Set, words []heap.Word) int {
	for _, w := range words {
		s.Remember(w)
	}
	visitCount = 0
	s.ForEach(countVisitor)
	s.Clear()
	return visitCount
}

func loadWords(n int) []heap.Word {
	words := make([]heap.Word, 0, n)
	for i := 0; i < n; i++ {
		// Walk a small window so roughly half the Remembers are duplicates.
		words = append(words, heap.PtrWord(3, (i*7)%(n/2)*8))
	}
	return words
}

// TestSteadyStateZeroAllocs is the acceptance guard for the remembered-set
// hot path: after the first collection's warmup, a full
// Remember/ForEach/Clear cycle must not allocate a single Go object.
func TestSteadyStateZeroAllocs(t *testing.T) {
	words := loadWords(256)
	for name, mk := range impls() {
		s := mk()
		barrierLoad(s, words) // warmup: tables and scratch buffers size up
		allocs := testing.AllocsPerRun(20, func() {
			barrierLoad(s, words)
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state Remember/ForEach/Clear allocates %.0f objects/run, want 0", name, allocs)
		}
	}
}

func BenchmarkBarrierCycleHashSet(b *testing.B) {
	benchBarrierCycle(b, NewHashSet())
}

func BenchmarkBarrierCycleSSB(b *testing.B) {
	benchBarrierCycle(b, NewSSB())
}

func benchBarrierCycle(b *testing.B, s Set) {
	words := loadWords(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		barrierLoad(s, words)
	}
}
