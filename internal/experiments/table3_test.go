package experiments

import (
	"testing"

	"rdgc/internal/bench"
	"rdgc/internal/bench/boyer"
	"rdgc/internal/bench/dynamicw"
	"rdgc/internal/bench/lattice"
	"rdgc/internal/bench/nbody"
	"rdgc/internal/bench/nucleic"
)

// table3Makers builds reduced-scale instances of each Table 3 program so
// the whole table runs in test time; the shape assertions don't depend on
// scale.
func table3Makers() map[string]func() bench.Program {
	return map[string]func() bench.Program{
		"nbody":    func() bench.Program { return nbody.New(16, 30) },
		"nucleic2": func() bench.Program { return nucleic.New(12, 2) },
		"lattice": func() bench.Program {
			l := lattice.New(4, 3)
			l.Repeat = 3
			return l
		},
		"10dynamic": func() bench.Program { return dynamicw.New(6) },
		"nboyer":    func() bench.Program { return boyer.New(2, false) },
		"sboyer":    func() bench.Program { return boyer.New(2, true) },
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := DefaultTable3Config()
	rows := map[string]Table3Row{}
	for name, mk := range table3Makers() {
		row, err := RunTable3Row(mk, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows[name] = row
		t.Logf("%-10s alloc %8.2f Mw peak %7.0f Kw  sc %5.1f%%  gen %5.1f%%",
			name, float64(row.AllocWords)/1e6, float64(row.PeakWords)/1e3,
			100*row.GCRatioSC(), 100*row.GCRatioGen())
	}

	// The paper's qualitative content: the generational collector beats
	// stop-and-copy on the die-young programs...
	for _, name := range []string{"nbody", "nucleic2", "lattice", "sboyer"} {
		r := rows[name]
		if r.GCRatioGen() >= r.GCRatioSC() {
			t.Errorf("%s: generational (%.1f%%) should beat stop-and-copy (%.1f%%)",
				name, 100*r.GCRatioGen(), 100*r.GCRatioSC())
		}
	}
	// ...and loses on 10dynamic, whose phase survivors defeat the weak
	// generational hypothesis.
	r := rows["10dynamic"]
	if r.GCRatioGen() <= r.GCRatioSC() {
		t.Errorf("10dynamic: generational (%.1f%%) should lose to stop-and-copy (%.1f%%)",
			100*r.GCRatioGen(), 100*r.GCRatioSC())
	}

	// sboyer's shared consing slashes allocation relative to nboyer.
	if rows["sboyer"].AllocWords*2 >= rows["nboyer"].AllocWords {
		t.Errorf("sboyer alloc %d not well below nboyer %d",
			rows["sboyer"].AllocWords, rows["nboyer"].AllocWords)
	}
}

func TestTable2Inventory(t *testing.T) {
	infos := bench.Table2()
	if len(infos) != 6 {
		t.Fatalf("Table 2 has %d rows, want 6", len(infos))
	}
	seen := map[string]bool{}
	for _, i := range infos {
		if i.Name == "" || i.Description == "" || i.Lines <= 0 {
			t.Errorf("malformed row %+v", i)
		}
		if seen[i.Name] {
			t.Errorf("duplicate row %s", i.Name)
		}
		seen[i.Name] = true
	}
}

func TestQuickSuiteRunsEverywhere(t *testing.T) {
	for _, p := range bench.Quick() {
		mk := p
		peak, alloc, err := MeasurePeak(mk, DefaultTable3Config())
		if err != nil {
			t.Errorf("%s: %v", mk.Name(), err)
			continue
		}
		if peak <= 0 || alloc == 0 {
			t.Errorf("%s: degenerate measurement peak=%d alloc=%d", mk.Name(), peak, alloc)
		}
	}
}
