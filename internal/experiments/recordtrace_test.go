package experiments

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"rdgc/internal/bench"
	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

// goldenPrograms picks small registry workloads for the conformance test;
// the full suite is exercised by gcbench -record.
func goldenPrograms() []bench.Program {
	all := bench.Quick()
	return []bench.Program{all[2], all[4]} // lattice, 2dyninfer
}

// eventBytes strips a trace's preamble and header block, returning the
// event blocks and trailer — the collector-independent part of the file.
func eventBytes(t *testing.T, raw []byte) []byte {
	t.Helper()
	pos := 8 // magic
	_, n := binary.Uvarint(raw[pos:])
	pos += n // version
	frame, n := binary.Uvarint(raw[pos:])
	// v2 frame: uvarint storedLen<<1|compressed + crc32 + stored payload.
	pos += n + 4 + int(frame>>1)
	if n <= 0 || pos > len(raw) {
		t.Fatalf("malformed trace preamble")
	}
	return raw[pos:]
}

// liveBenchRun mirrors RecordBenchTrace's run shape without any recording.
func liveBenchRun(t *testing.T, p bench.Program, nc gcfuzz.NamedCollector) (heap.Stats, heap.GCStats) {
	t.Helper()
	h := heap.New()
	c := nc.New(h)
	if err := p.Run(h); err != nil {
		t.Fatalf("%s live under %s: %v", p.Name(), nc.Name, err)
	}
	c.Collect()
	return h.Stats, *c.GCStats()
}

// TestBenchTraceGoldenReplay is the benchmark-level conformance property:
// each registry workload, recorded once, replays under all seven collectors
// with byte-identical mutator Stats and GCStats identical to a live run of
// that collector — and the recording itself neither perturbs the recording
// run nor depends on which collector recorded it.
func TestBenchTraceGoldenReplay(t *testing.T) {
	dir := t.TempDir()
	for _, p := range goldenPrograms() {
		grid := gcfuzz.CollectorsSized(p.HeapWords())

		path := filepath.Join(dir, p.Name()+".trace")
		stats, err := RecordBenchTrace(path, p, grid[0], false)
		if err != nil {
			t.Fatal(err)
		}
		liveStats, _ := liveBenchRun(t, p, grid[0])
		if stats != liveStats {
			t.Fatalf("%s: recording perturbed the run: %+v vs %+v", p.Name(), stats, liveStats)
		}

		// Record once: a different recording collector produces the identical
		// event stream. (The header differs — it names the recording
		// collector — so compare everything after the header block.)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		path2 := filepath.Join(dir, p.Name()+"-gen.trace")
		if _, err := RecordBenchTrace(path2, p, grid[2], false); err != nil {
			t.Fatal(err)
		}
		raw2, err := os.ReadFile(path2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(eventBytes(t, raw), eventBytes(t, raw2)) {
			t.Fatalf("%s: trace events depend on the recording collector (%s vs %s)",
				p.Name(), grid[0].Name, grid[2].Name)
		}

		for _, nc := range grid {
			wantStats, wantGC := liveBenchRun(t, p, nc)
			rd, err := trace.NewReader(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			h := heap.New()
			c := nc.New(h)
			res, err := trace.Replay(rd, h, c, trace.ReplayOptions{Verify: true})
			if err != nil {
				t.Fatalf("%s replay under %s: %v", p.Name(), nc.Name, err)
			}
			if res.Stats != wantStats {
				t.Errorf("%s under %s: replay stats %+v, live %+v", p.Name(), nc.Name, res.Stats, wantStats)
			}
			if got := *c.GCStats(); got != wantGC {
				t.Errorf("%s under %s: replay GCStats %+v, live %+v", p.Name(), nc.Name, got, wantGC)
			}
		}
	}
}
