package experiments

import (
	"fmt"

	"rdgc/internal/bench"
	"rdgc/internal/bench/boyer"
	"rdgc/internal/bench/dynamicw"
	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
	"rdgc/internal/lifetime"
)

// Words per 100,000 bytes: the paper measures ages in bytes of allocation;
// this heap measures in 8-byte words.
const wordsPer100KB = 12500

// SurvivalExperiment defines one of the paper's survival-rate tables.
type SurvivalExperiment struct {
	ID          string // "table4" .. "table7"
	Description string
	Make        func() bench.Program
	EpochWords  uint64
	MaxAge      int // age classes before the "or older" row
}

// SurvivalExperiments returns the configurations reproducing Tables 4-7.
func SurvivalExperiments() []SurvivalExperiment {
	return []SurvivalExperiment{
		{
			ID:          "table4",
			Description: "survival by age, one iteration of dynamic, 100,000-byte epochs",
			Make:        func() bench.Program { return dynamicw.New(1) },
			EpochWords:  wordsPer100KB,
			MaxAge:      10,
		},
		{
			ID:          "table5",
			Description: "survival by age, 10dynamic, 500,000-byte epochs",
			Make:        func() bench.Program { return dynamicw.New(10) },
			EpochWords:  5 * wordsPer100KB,
			MaxAge:      3,
		},
		{
			ID:          "table6",
			Description: "survival by age, nboyer2, 500,000-byte epochs",
			Make:        func() bench.Program { return boyer.New(2, false) },
			EpochWords:  5 * wordsPer100KB,
			MaxAge:      10,
		},
		{
			ID:          "table7",
			Description: "survival by age, sboyer2, 500,000-byte epochs",
			Make:        func() bench.Program { return boyer.New(2, true) },
			EpochWords:  5 * wordsPer100KB,
			MaxAge:      10,
		},
	}
}

// RunSurvival executes one survival experiment and returns its table.
func RunSurvival(e SurvivalExperiment) ([]lifetime.SurvivalRow, error) {
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<16, semispace.WithExpansion(3))
	tr := lifetime.NewTracker(h, e.EpochWords)
	if err := e.Make().Run(h); err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	return lifetime.SurvivalTable(tr.Snapshots(), e.EpochWords, e.MaxAge), nil
}

// ProfileExperiment defines one of the paper's live-storage figures.
type ProfileExperiment struct {
	ID          string // "figure2" .. "figure4"
	Description string
	Make        func() bench.Program
	EpochWords  uint64
	MaxAge      int
}

// ProfileExperiments returns the configurations reproducing Figures 2-4.
func ProfileExperiments() []ProfileExperiment {
	return []ProfileExperiment{
		{
			ID:          "figure2",
			Description: "live storage vs time, one iteration of dynamic (100,000-byte stripes)",
			Make:        func() bench.Program { return dynamicw.New(1) },
			EpochWords:  wordsPer100KB,
			MaxAge:      10, // the paper whites out storage over 1,000,000 bytes old
		},
		{
			ID:          "figure3",
			Description: "live storage vs time, nboyer1 (500,000-byte stripes)",
			Make:        func() bench.Program { return boyer.New(1, false) },
			EpochWords:  5 * wordsPer100KB,
			MaxAge:      10,
		},
		{
			ID:          "figure4",
			Description: "live storage vs time, sboyer2 (500,000-byte stripes)",
			Make:        func() bench.Program { return boyer.New(2, true) },
			EpochWords:  5 * wordsPer100KB,
			MaxAge:      10,
		},
	}
}

// RunProfile executes one profile experiment.
func RunProfile(e ProfileExperiment) (lifetime.Profile, error) {
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<16, semispace.WithExpansion(3))
	tr := lifetime.NewTracker(h, e.EpochWords)
	if err := e.Make().Run(h); err != nil {
		return lifetime.Profile{}, fmt.Errorf("%s: %w", e.ID, err)
	}
	return lifetime.BuildProfile(tr.Finish(), e.EpochWords, e.MaxAge), nil
}
