package experiments

import (
	"rdgc/internal/decay"
	"rdgc/internal/gc/npms"
	"rdgc/internal/heap"
)

// RunNonPredictiveMS measures the mark/sweep-based non-predictive collector
// (internal/gc/npms) on the decay workload. Its policy is the same as the
// copying collector's, so Theorem 4 should describe it too; its mark/cons
// numerator is marked words instead of copied words.
func RunNonPredictiveMS(cfg DecayConfig) Result {
	cfg = cfg.withDefaults()
	h := heap.New()
	stepWords := cfg.HeapWords() / cfg.K
	c := npms.New(h, cfg.K, stepWords, npms.WithG(cfg.G))
	w := decay.NewWorkload(h, cfg.HalfLife, cfg.Seed, cfg.workloadOpts()...)
	r := measure(cfg, h, c, w)
	return r
}
