package experiments

import "testing"

// TestInfantMortalityCrossover connects Section 7 to the model: under pure
// radioactive decay the conventional generational collector loses to
// non-generational collection, but once most objects die young (the weak
// generational hypothesis) it wins — while the non-predictive collector is
// competitive in both regimes.
func TestInfantMortalityCrossover(t *testing.T) {
	pure := base
	pure.Steps = 80000

	weak := pure
	weak.InfantProb = 0.95
	weak.InfantHalfLife = pure.HalfLife / 256
	weak.NurseryFraction = 0.25 // generational collectors give the young
	// generations a light load factor (§7)

	msPure := RunMarkSweep(pure)
	convPure := RunConventionalGenerational(pure)
	if convPure.MarkCons <= msPure.MarkCons {
		t.Errorf("pure decay: conventional %.3f should lose to mark/sweep %.3f",
			convPure.MarkCons, msPure.MarkCons)
	}

	msWeak := RunMarkSweep(weak)
	convWeak := RunConventionalGenerational(weak)
	if convWeak.MarkCons >= msWeak.MarkCons {
		t.Errorf("weak-generational: conventional %.3f should beat mark/sweep %.3f",
			convWeak.MarkCons, msWeak.MarkCons)
	}

	// The non-predictive collector must beat non-generational collection
	// under pure decay, and not fall apart in the weak regime (the young
	// steps hold the infants until they have decayed).
	npPure := RunNonPredictive(pure)
	if npPure.MarkCons >= msPure.MarkCons {
		t.Errorf("pure decay: non-predictive %.3f should beat mark/sweep %.3f",
			npPure.MarkCons, msPure.MarkCons)
	}
	// Infant mortality makes survival *increase* with age — the regime §7
	// identifies as unfavourable to non-predictive collection — so we only
	// require the standalone collector to stay in the baseline's regime.
	npWeak := RunNonPredictive(weak)
	if npWeak.MarkCons > 1.5*msWeak.MarkCons {
		t.Errorf("weak-generational: non-predictive %.3f far above mark/sweep %.3f",
			npWeak.MarkCons, msWeak.MarkCons)
	}

	// The paper's remedy is the hybrid (§8): a conventional nursery
	// filters the infants and the non-predictive area manages only the
	// long-lived population. It must beat the non-generational baseline in
	// the weak regime.
	hyWeak := RunHybrid(weak)
	if hyWeak.MarkCons >= msWeak.MarkCons {
		t.Errorf("weak-generational: hybrid %.3f should beat mark/sweep %.3f",
			hyWeak.MarkCons, msWeak.MarkCons)
	}
}

// TestTenuringDoesNotRescueYoungestFirst: no number of aging generations
// makes youngest-first collection profitable under pure radioactive decay.
func TestTenuringDoesNotRescueYoungestFirst(t *testing.T) {
	cfg := base
	cfg.Steps = 80000
	ms := RunMarkSweep(cfg)
	for _, n := range []int{2, 3, 4} {
		mg := RunMultigen(cfg, n)
		if mg.MarkCons <= ms.MarkCons {
			t.Errorf("multigen(%d) %.3f should lose to mark/sweep %.3f under decay",
				n, mg.MarkCons, ms.MarkCons)
		}
	}
}
