package experiments

import (
	"fmt"
	"time"

	"rdgc/internal/bench"
	"rdgc/internal/decay"
	"rdgc/internal/gc/marksweep"
	"rdgc/internal/gc/npms"
	"rdgc/internal/heap"
)

// PauseRun is one (workload, collector, mode) pause-distribution
// measurement: the headline numbers behind the incremental-collection
// claim. Pause sizes are words of collector work per mutator-visible pause
// — whole collections in stop-the-world mode; root scans, mark slices,
// lazy sweeps, and termination in incremental mode.
type PauseRun struct {
	Workload    string
	Collector   string
	Incremental bool
	// SliceBudget is the words-per-slice budget an incremental run used (0
	// means the heap default); meaningless when Incremental is false.
	SliceBudget     int
	AllocWords      uint64
	GCWorkWords     uint64
	Collections     int
	Pauses          uint64
	PauseP50Words   uint64
	PauseP99Words   uint64
	MaxPauseWords   uint64
	TotalPauseWords uint64
	WallNS          int64
	Err             error
}

// pauseHeap builds a heap configured for the requested collection mode.
func pauseHeap(incremental bool, sliceBudget int) *heap.Heap {
	h := heap.New()
	h.SetGCIncremental(incremental)
	if sliceBudget > 0 {
		h.SetGCSliceBudget(sliceBudget)
	}
	return h
}

// pauseCollector constructs the named incremental-capable collector on h,
// sized for a workload whose comfortable heap is total words; npmsStep
// sizes the non-predictive collector's 16 steps, since it cannot grow (the
// decay grid uses its proven tight sizing; the registry programs get a 2x
// margin against fragmentation). The two mark/sweep collectors are the ones
// with an incremental mode.
func pauseCollector(name string, h *heap.Heap, total, npmsStep int) (heap.Collector, error) {
	switch name {
	case "marksweep":
		return marksweep.New(h, total, marksweep.WithExpansion(2)), nil
	case "npms":
		return npms.New(h, 16, npmsStep), nil
	}
	return nil, fmt.Errorf("pauserun: no incremental-capable collector %q", name)
}

// finishPauseRun fills the measurement from the collector's statistics.
func finishPauseRun(r PauseRun, h *heap.Heap, c heap.Collector, wall time.Duration) PauseRun {
	g := c.GCStats()
	r.AllocWords = h.Stats.WordsAllocated
	r.GCWorkWords = g.WordsCopied + g.WordsMarked + uint64(bench.SweepDiscount*float64(g.WordsSwept))
	r.Collections = g.Collections
	r.Pauses = g.Pauses.Count
	r.PauseP50Words = g.Pauses.P50()
	r.PauseP99Words = g.Pauses.P99()
	r.MaxPauseWords = g.MaxPauseWords
	r.TotalPauseWords = g.TotalPauseWords
	r.WallNS = wall.Nanoseconds()
	return r
}

// RunDecayPauses measures the pause distribution of the radioactive-decay
// workload (the repository's decay-grid configuration: half-life 768,
// L = 3.5) on the named collector, stop-the-world or incremental at the
// given slice budget.
func RunDecayPauses(collector string, steps int, incremental bool, sliceBudget int) PauseRun {
	r := PauseRun{
		Workload:    "decay-768",
		Collector:   collector,
		Incremental: incremental,
		SliceBudget: sliceBudget,
	}
	cfg := DecayConfig{HalfLife: 768, L: 3.5, G: 0.25, K: 16, Steps: steps}
	total := cfg.HeapWords()
	h := pauseHeap(incremental, sliceBudget)
	c, err := pauseCollector(collector, h, total, total/16+total/64)
	if err != nil {
		r.Err = err
		return r
	}
	w := decay.NewWorkload(h, 768, 1)
	w.Warmup(10)
	start := time.Now()
	w.Run(steps)
	return finishPauseRun(r, h, c, time.Since(start))
}

// RunBenchPauses measures the pause distribution of one registry benchmark
// on the named collector, stop-the-world or incremental.
func RunBenchPauses(p bench.Program, collector string, incremental bool, sliceBudget int) PauseRun {
	return RunBenchPausesLogged(p, collector, incremental, sliceBudget, nil)
}

// RunBenchPausesLogged is RunBenchPauses with a raw per-pause hook: log
// (when non-nil) receives every mutator-visible pause, in order, as it is
// recorded — the stream behind gcbench -pauselog.
func RunBenchPausesLogged(p bench.Program, collector string, incremental bool, sliceBudget int, log func(words uint64)) PauseRun {
	r := PauseRun{
		Workload:    p.Name(),
		Collector:   collector,
		Incremental: incremental,
		SliceBudget: sliceBudget,
	}
	h := pauseHeap(incremental, sliceBudget)
	if log != nil {
		h.SetPauseLog(log)
	}
	c, err := pauseCollector(collector, h, p.HeapWords(), p.HeapWords()/8)
	if err != nil {
		r.Err = err
		return r
	}
	start := time.Now()
	res := bench.Measure(p, h, c)
	r = finishPauseRun(r, h, c, time.Since(start))
	r.Err = res.Err
	return r
}
