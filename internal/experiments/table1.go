package experiments

import (
	"rdgc/internal/core"
	"rdgc/internal/heap"
)

// Table 1 of the paper traces the non-predictive collector with k = 7
// steps, j fixed at 1, and a deterministic workload "close to but nicer
// than" radioactive decay with half-life 1024 and inverse load factor 3.5:
// every 1024 allocations, exactly half of every live cohort dies. At the
// steady state each collection copies 1024 of the 5120 objects allocated
// since the previous one — a mark/cons ratio of 0.2, against 0.4 for a
// non-generational collector in the same heap.

// Table1ObjWords is the footprint of one workload object (a pair).
const Table1ObjWords = 3

// Table1Result is the reproduced table.
type Table1Result struct {
	// Rows holds live objects per step (index 0 = step 1, the youngest) at
	// each window boundary of the final steady cycle; the first row is the
	// post-collection ("gc") row.
	Rows [][]int
	// MarkCons is the steady-state mark/cons ratio of the final cycle.
	MarkCons float64
	// Collections is the total number of collections performed.
	Collections int
}

// table1Workload drives the halving workload against a collector.
type table1Workload struct {
	h     *heap.Heap
	slots []heap.Ref // allocation order; dead slots hold NullWord
}

func (w *table1Workload) allocate(n int) {
	for i := 0; i < n; i++ {
		s := w.h.Scope()
		obj := w.h.Cons(w.h.Fix(int64(len(w.slots))), w.h.Null())
		w.slots = append(w.slots, w.h.Global(obj))
		s.Close()
	}
}

// halve kills every second live object in allocation order, so every
// even-sized cohort loses exactly half its members.
func (w *table1Workload) halve() {
	kill := false
	for _, r := range w.slots {
		if w.h.Get(r) == heap.NullWord {
			continue
		}
		if kill {
			w.h.Set(r, heap.NullWord)
		}
		kill = !kill
	}
}

// liveByStep traces the heap and returns the live objects in each step.
func liveByStep(h *heap.Heap, st *core.Steps) []int {
	m := heap.NewMarker(h, nil)
	m.Run()
	out := make([]int, st.K())
	for p := 0; p < st.K(); p++ {
		s := st.Step(p)
		heap.WalkSpace(s, func(off int, hdr heap.Word) bool {
			if s.MarkedAt(off) {
				out[p]++
			}
			return true
		})
	}
	// The global trace marked every reachable object, including ones outside
	// the steps (statics); clear all bitmaps so later collections verify.
	heap.ClearMarks(h.Spaces...)
	return out
}

// RunTable1 reproduces Table 1: it runs the workload for `cycles` steady
// cycles after warmup and reports the final cycle.
func RunTable1(cycles int) Table1Result {
	const (
		k           = 7
		objsPerStep = 1024
		window      = objsPerStep
	)
	h := heap.New()
	c := core.New(h, k, objsPerStep*Table1ObjWords, core.WithPolicy(core.FixedJ(1)))
	w := &table1Workload{h: h}

	var res Table1Result
	var cycleStartAlloc, cycleStartCopied uint64

	totalWindows := 7 + 5*(cycles+1) // fill-from-empty plus steady cycles
	for i := 0; i < totalWindows; i++ {
		if c.Steps().FreeWords() < window*Table1ObjWords {
			c.Collect()
			// A new cycle starts here: reset the recording.
			res.Rows = res.Rows[:0]
			res.Rows = append(res.Rows, liveByStep(h, c.Steps()))
			res.MarkCons = float64(c.GCStats().WordsCopied-cycleStartCopied) /
				float64(h.Stats.WordsAllocated-cycleStartAlloc)
			cycleStartAlloc = h.Stats.WordsAllocated
			cycleStartCopied = c.GCStats().WordsCopied
		}
		w.halve()
		w.allocate(window)
		res.Rows = append(res.Rows, liveByStep(h, c.Steps()))
	}
	res.Collections = c.GCStats().Collections
	return res
}
