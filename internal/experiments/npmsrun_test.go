package experiments

import "testing"

func TestNonPredictiveMSBeatsNonGenerational(t *testing.T) {
	npms := RunNonPredictiveMS(base)
	ms := RunMarkSweep(base)
	if npms.MarkCons >= ms.MarkCons {
		t.Errorf("np mark/sweep %.4f not below non-generational %.4f",
			npms.MarkCons, ms.MarkCons)
	}
}

func TestNonPredictiveMSNearCopyingVariant(t *testing.T) {
	// Same policy, different mechanism: the mark/sweep variant's residual
	// survivors in the renamed young steps make f < g, so its ratio may
	// drift above the copying collector's, but the two must be in the same
	// regime.
	msv := RunNonPredictiveMS(base)
	cp := RunNonPredictive(base)
	if msv.MarkCons > 2*cp.MarkCons || msv.MarkCons < cp.MarkCons/2 {
		t.Errorf("np-ms mark/cons %.4f far from copying np %.4f",
			msv.MarkCons, cp.MarkCons)
	}
}

func TestSurvivalExperimentConfigs(t *testing.T) {
	if len(SurvivalExperiments()) != 4 {
		t.Fatal("expected 4 survival experiments (Tables 4-7)")
	}
	if len(ProfileExperiments()) != 3 {
		t.Fatal("expected 3 profile experiments (Figures 2-4)")
	}
	// Smoke the cheapest of each kind end to end.
	rows, err := RunSurvival(SurvivalExperiments()[1]) // table5
	if err != nil {
		t.Fatal(err)
	}
	populated := 0
	for _, r := range rows {
		if r.Live > 0 {
			populated++
			if r.Rate() < 0 || r.Rate() > 1 {
				t.Errorf("rate out of range: %v", r)
			}
		}
	}
	if populated < 2 {
		t.Errorf("only %d populated rows", populated)
	}

	p, err := RunProfile(ProfileExperiments()[0]) // figure2
	if err != nil {
		t.Fatal(err)
	}
	var peak uint64
	for _, r := range p.Rows {
		if r.TotalLive > peak {
			peak = r.TotalLive
		}
	}
	// Figure 2's peak is 1.1 MB; accept a broad band.
	if peakMB := float64(peak) * 8 / 1e6; peakMB < 0.7 || peakMB > 1.6 {
		t.Errorf("figure2 peak = %.2f MB, want about 1.1", peakMB)
	}
}
