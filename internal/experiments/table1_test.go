package experiments

import (
	"math"
	"testing"
)

func TestTable1Reproduction(t *testing.T) {
	res := RunTable1(3)

	// The paper's Table 1, in step order 1..7 (objects, not words):
	want := [][]int{
		{0, 0, 0, 0, 0, 1024, 1024}, // gc row / t=0
		{0, 0, 0, 0, 1024, 512, 512},
		{0, 0, 0, 1024, 512, 256, 256},
		{0, 0, 1024, 512, 256, 128, 128},
		{0, 1024, 512, 256, 128, 64, 64},
		{1024, 512, 256, 128, 64, 32, 32},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
	}
	for i, row := range want {
		for j := range row {
			if res.Rows[i][j] != row[j] {
				t.Errorf("row %d: got %v, want %v", i, res.Rows[i], row)
				break
			}
		}
	}

	// The steady-state mark/cons ratio is 1024/5120 = 0.2, versus 0.4 for
	// a non-generational collector in the same heap.
	if math.Abs(res.MarkCons-0.2) > 1e-9 {
		t.Errorf("steady mark/cons = %v, want 0.2", res.MarkCons)
	}
	if res.Collections < 3 {
		t.Errorf("only %d collections", res.Collections)
	}
}
