package experiments

import (
	"math"
	"testing"

	"rdgc/internal/analytic"
)

// base is a moderate configuration that keeps the tests fast while leaving
// enough collections in the measurement window for stable ratios.
var base = DecayConfig{
	HalfLife: 1024,
	L:        3.5,
	G:        0.25,
	K:        16,
	Steps:    150000,
	Seed:     7,
}

func TestMarkSweepMatchesOneOverLMinusOne(t *testing.T) {
	r := RunMarkSweep(base)
	want := analytic.NonGenerationalMarkCons(base.L)
	if math.Abs(r.MarkCons-want)/want > 0.15 {
		t.Errorf("mark/sweep mark/cons = %.4f, want about %.4f", r.MarkCons, want)
	}
}

func TestSemispaceMatchesOneOverLMinusOne(t *testing.T) {
	r := RunSemispace(base)
	want := analytic.NonGenerationalMarkCons(base.L)
	if math.Abs(r.MarkCons-want)/want > 0.15 {
		t.Errorf("semispace mark/cons = %.4f, want about %.4f", r.MarkCons, want)
	}
}

func TestNonPredictiveMatchesTheorem4(t *testing.T) {
	if !analytic.Theorem4Holds(base.G, base.L) {
		t.Fatal("test configuration must be in the Theorem 4 region")
	}
	r := RunNonPredictive(base)
	want := analytic.MarkCons(base.G, base.L)
	if math.Abs(r.MarkCons-want)/want > 0.25 {
		t.Errorf("non-predictive mark/cons = %.4f, want about %.4f (Theorem 4)", r.MarkCons, want)
	}
}

func TestHeadlineClaimNonPredictiveWins(t *testing.T) {
	// Section 4/5: the non-predictive collector beats the non-generational
	// collector under the radioactive decay model.
	np := RunNonPredictive(base)
	ms := RunMarkSweep(base)
	if np.MarkCons >= ms.MarkCons {
		t.Errorf("non-predictive %.4f not below non-generational %.4f",
			np.MarkCons, ms.MarkCons)
	}
	// And the measured advantage should resemble Corollary 5's prediction.
	gotRel := np.MarkCons / ms.MarkCons
	wantRel := analytic.Relative(base.G, base.L)
	if math.Abs(gotRel-wantRel) > 0.20 {
		t.Errorf("measured relative overhead %.3f, Corollary 5 predicts %.3f", gotRel, wantRel)
	}
}

func TestSection3ClaimConventionalLoses(t *testing.T) {
	// Section 3: a conventional youngest-first generational collector does
	// *worse* than a non-generational collector under radioactive decay,
	// because the youngest generation holds the objects that have had the
	// least time to decay.
	conv := RunConventionalGenerational(base)
	ms := RunMarkSweep(base)
	if conv.MarkCons <= ms.MarkCons {
		t.Errorf("conventional generational %.4f not above non-generational %.4f",
			conv.MarkCons, ms.MarkCons)
	}
}

func TestFigure1ShapeSimulated(t *testing.T) {
	// Sample three points of one Figure 1 curve by simulation and check
	// they are ordered the way the analysis says: the mid-g point beats
	// both the tiny-g point (barely generational) and g at the boundary.
	cfg := base
	cfg.Steps = 100000
	ratios := map[float64]float64{}
	ms := RunMarkSweep(cfg)
	for _, g := range []float64{0.03, 0.25, 0.5} {
		c := cfg
		c.G = g
		np := RunNonPredictive(c)
		ratios[g] = np.MarkCons / ms.MarkCons
	}
	if !(ratios[0.25] < ratios[0.03]) {
		t.Errorf("relative overhead at g=0.25 (%.3f) not below g=0.03 (%.3f)",
			ratios[0.25], ratios[0.03])
	}
	if ratios[0.25] >= 1 {
		t.Errorf("relative overhead at g=0.25 is %.3f, want < 1", ratios[0.25])
	}
}

func TestCompareAllRuns(t *testing.T) {
	cfg := base
	cfg.Steps = 40000
	results := CompareAll(cfg)
	if len(results) != 4 {
		t.Fatalf("CompareAll returned %d results", len(results))
	}
	for _, r := range results {
		if r.MarkCons <= 0 || math.IsNaN(r.MarkCons) {
			t.Errorf("%s: bad mark/cons %v", r.Collector, r.MarkCons)
		}
		if r.Collections == 0 {
			t.Errorf("%s: no collections in measurement window", r.Collector)
		}
	}
}

func TestLinkingGrowsNonPredictiveRemset(t *testing.T) {
	// §8.3: programs whose pointers run from younger to older objects can
	// inflate the non-predictive collector's remembered set.
	cfg := base
	cfg.Steps = 60000
	cfg.Linking = 0.9
	linked := RunNonPredictive(cfg)
	cfg.Linking = 0
	plain := RunNonPredictive(cfg)
	if linked.RemsetPeak <= plain.RemsetPeak {
		t.Errorf("remset peak with linking (%d) not above without (%d)",
			linked.RemsetPeak, plain.RemsetPeak)
	}
}

func TestDeterministicResults(t *testing.T) {
	a := RunNonPredictive(base)
	b := RunNonPredictive(base)
	if a.MarkCons != b.MarkCons || a.Collections != b.Collections {
		t.Error("same configuration produced different results")
	}
}
