// Package experiments orchestrates the paper's quantitative experiments:
// it wires the radioactive-decay workload (and, elsewhere, the benchmark
// programs) to each collector with the paper's parameterization (half-life
// h, inverse load factor L, generation fraction g) and measures mark/cons
// ratios, pauses, and remembered-set growth.
package experiments

import (
	"fmt"
	"math"

	"rdgc/internal/core"
	"rdgc/internal/decay"
	"rdgc/internal/gc/generational"
	"rdgc/internal/gc/hybrid"
	"rdgc/internal/gc/marksweep"
	"rdgc/internal/gc/multigen"
	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

// DecayConfig parameterizes a radioactive-decay measurement.
type DecayConfig struct {
	HalfLife float64 // h, in objects
	L        float64 // inverse load factor: heap words / live words
	G        float64 // generation fraction g = j/k (non-predictive only)
	K        int     // step count (non-predictive only)
	Steps    int     // measured allocations (objects)
	Warmup   float64 // warmup length in half-lives (default 10)
	Seed     int64
	Linking  float64 // probability a new object links a live one (default 0)

	// NurseryFraction sizes the conventional generational collector's
	// nursery as a fraction of the heap (default 1/8).
	NurseryFraction float64

	// SizeMin/SizeMax, when set, draw object payloads uniformly from
	// [SizeMin, SizeMax] words instead of fixed-size pairs (the
	// object-size ablation).
	SizeMin, SizeMax int

	// InfantProb/InfantHalfLife mix infant mortality into the lifetime
	// distribution: the §7 crossover experiment between the pure decay
	// model and weak-generational behaviour.
	InfantProb     float64
	InfantHalfLife float64
}

func (cfg DecayConfig) avgObjWords() float64 {
	if cfg.SizeMax > 0 {
		return 1 + float64(cfg.SizeMin+cfg.SizeMax)/2
	}
	return decay.ObjectWords
}

func (cfg DecayConfig) withDefaults() DecayConfig {
	if cfg.Warmup == 0 {
		cfg.Warmup = 10
	}
	if cfg.K == 0 {
		cfg.K = 16
	}
	if cfg.NurseryFraction == 0 {
		cfg.NurseryFraction = 1.0 / 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// HeapWords returns the heap size N in words implied by h and L:
// N = L · n · (average object words) with n the expected live objects at
// equilibrium under the configured lifetime mixture.
func (cfg DecayConfig) HeapWords() int {
	n := decay.Model{H: cfg.HalfLife}.EquilibriumLive()
	if cfg.InfantProb > 0 {
		short := decay.Model{H: cfg.InfantHalfLife}.EquilibriumLive()
		n = cfg.InfantProb*short + (1-cfg.InfantProb)*n
	}
	return int(math.Ceil(cfg.L * n * cfg.avgObjWords()))
}

// Result reports one measured run.
type Result struct {
	Collector   string
	MarkCons    float64 // (copied+marked words) / allocated words, measured window
	Collections int     // collections during the measured window
	MaxPause    uint64  // largest single-collection trace, whole run (words)
	RemsetPeak  int
	LiveAvg     float64 // mean live objects during measurement
	HeapWords   int
}

func (r Result) String() string {
	return fmt.Sprintf("%-16s mark/cons %.4f  collections %4d  max pause %6d words  live %.0f",
		r.Collector, r.MarkCons, r.Collections, r.MaxPause, r.LiveAvg)
}

// measure runs the workload and computes deltas across the measurement
// window. It owns warmup, sampling, and ratio arithmetic so every collector
// is measured identically.
func measure(cfg DecayConfig, h *heap.Heap, c heap.Collector, w *decay.Workload) Result {
	w.Warmup(cfg.Warmup)

	alloc0 := h.Stats.WordsAllocated
	g0 := *c.GCStats()

	var liveSum float64
	samples := 0
	chunk := cfg.Steps / 100
	if chunk < 1 {
		chunk = 1
	}
	for done := 0; done < cfg.Steps; done += chunk {
		n := chunk
		if rest := cfg.Steps - done; n > rest {
			n = rest
		}
		w.Run(n)
		liveSum += float64(w.LiveObjects())
		samples++
	}

	g1 := c.GCStats()
	allocated := h.Stats.WordsAllocated - alloc0
	work := (g1.WordsCopied - g0.WordsCopied) + (g1.WordsMarked - g0.WordsMarked)
	return Result{
		Collector:   c.Name(),
		MarkCons:    float64(work) / float64(allocated),
		Collections: g1.Collections - g0.Collections,
		MaxPause:    g1.MaxPauseWords,
		RemsetPeak:  g1.RemsetPeak,
		LiveAvg:     liveSum / float64(samples),
		HeapWords:   cfg.HeapWords(),
	}
}

func (cfg DecayConfig) workloadOpts() []decay.Option {
	var opts []decay.Option
	if cfg.Linking > 0 {
		opts = append(opts, decay.WithLinking(cfg.Linking))
	}
	if cfg.SizeMax > 0 {
		opts = append(opts, decay.WithSizes(cfg.SizeMin, cfg.SizeMax))
	}
	if cfg.InfantProb > 0 {
		opts = append(opts, decay.WithInfantMortality(cfg.InfantProb, cfg.InfantHalfLife))
	}
	return opts
}

// RunMultigen measures an n-generation youngest-first collector on the
// decay workload, with geometrically growing aging generations in front of
// the old semispace (the tenuring ablation).
func RunMultigen(cfg DecayConfig, nGens int) Result {
	cfg = cfg.withDefaults()
	h := heap.New()
	total := cfg.HeapWords()
	sizes := make([]int, nGens)
	rem := total
	for i := 0; i < nGens-1; i++ {
		s := total >> (nGens - i)
		sizes[i] = s
		rem -= s
	}
	sizes[nGens-1] = rem
	c := multigen.New(h, sizes)
	w := decay.NewWorkload(h, cfg.HalfLife, cfg.Seed, cfg.workloadOpts()...)
	return measure(cfg, h, c, w)
}

// RunHybrid measures the Larceny-style hybrid (ephemeral nursery feeding a
// non-predictive dynamic area, §8) on the decay workload. The nursery
// filters short-lived objects so the non-predictive area manages only the
// longer-lived population, which is the paper's intended deployment.
func RunHybrid(cfg DecayConfig) Result {
	cfg = cfg.withDefaults()
	h := heap.New()
	total := cfg.HeapWords()
	nursery := int(float64(total) * cfg.NurseryFraction)
	k := cfg.K
	if max := 2 * (total - nursery) / maxInt(nursery, 1); k > max && max >= 2 {
		k = max // the step size must be at least half the nursery size
	}
	stepWords := (total - nursery) / k
	c := hybrid.New(h, nursery, k, stepWords, hybrid.WithPolicy(core.FractionJ(cfg.G)))
	w := decay.NewWorkload(h, cfg.HalfLife, cfg.Seed, cfg.workloadOpts()...)
	return measure(cfg, h, c, w)
}

// RunMarkSweep measures the non-generational mark/sweep collector, whose
// expected mark/cons ratio is 1/(L−1).
func RunMarkSweep(cfg DecayConfig) Result {
	cfg = cfg.withDefaults()
	h := heap.New()
	c := marksweep.New(h, cfg.HeapWords())
	w := decay.NewWorkload(h, cfg.HalfLife, cfg.Seed, cfg.workloadOpts()...)
	return measure(cfg, h, c, w)
}

// RunSemispace measures the non-generational stop-and-copy collector with a
// semispace of N words (total 2N, as the paper's accounting also hides).
func RunSemispace(cfg DecayConfig) Result {
	cfg = cfg.withDefaults()
	h := heap.New()
	c := semispace.New(h, cfg.HeapWords())
	w := decay.NewWorkload(h, cfg.HalfLife, cfg.Seed, cfg.workloadOpts()...)
	return measure(cfg, h, c, w)
}

// RunNonPredictive measures the paper's collector: K steps over N words,
// with j chosen as ⌊g·k⌋ after each collection (FractionJ keeps f = g, the
// Theorem 4 regime, by never letting j exceed the empty young steps).
func RunNonPredictive(cfg DecayConfig) Result {
	cfg = cfg.withDefaults()
	h := heap.New()
	stepWords := cfg.HeapWords() / cfg.K
	c := core.New(h, cfg.K, stepWords, core.WithPolicy(core.FractionJ(cfg.G)))
	w := decay.NewWorkload(h, cfg.HalfLife, cfg.Seed, cfg.workloadOpts()...)
	r := measure(cfg, h, c, w)
	r.Collector = fmt.Sprintf("non-predictive g=%.2f", cfg.G)
	return r
}

// RunConventionalGenerational measures the conventional youngest-first
// generational collector, which Section 3 predicts does *worse* than the
// non-generational collectors under radioactive decay: the nursery holds
// the objects with the least time to decay, so minor collections copy
// almost everything.
func RunConventionalGenerational(cfg DecayConfig) Result {
	cfg = cfg.withDefaults()
	h := heap.New()
	total := cfg.HeapWords()
	nursery := int(float64(total) * cfg.NurseryFraction)
	c := generational.New(h, nursery, total-nursery)
	w := decay.NewWorkload(h, cfg.HalfLife, cfg.Seed, cfg.workloadOpts()...)
	return measure(cfg, h, c, w)
}

// CompareAll runs all four collectors on identical workloads.
func CompareAll(cfg DecayConfig) []Result {
	return []Result{
		RunMarkSweep(cfg),
		RunSemispace(cfg),
		RunConventionalGenerational(cfg),
		RunNonPredictive(cfg),
	}
}
