package experiments

import (
	"rdgc/internal/bench"
	"rdgc/internal/gc/generational"
	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

// MutatorCostPerWord converts allocated words into mutator-work units for
// the Table 3 gc/mutator percentages: allocating (and computing with) a
// word of storage costs several times more than tracing one. The constant
// calibrates the absolute percentages into the paper's range; every
// comparison between collectors is independent of it.
const MutatorCostPerWord = 8.0

// Table3Row reproduces one row of Table 3: a benchmark measured under the
// non-generational stop-and-copy collector and the conventional
// generational collector.
type Table3Row struct {
	Program      string
	AllocWords   uint64
	PeakWords    int
	SemiWords    int // stop-and-copy semispace size (the paper's column 4)
	StopAndCopy  bench.RunResult
	Generational bench.RunResult
}

// GCRatioSC returns the stop-and-copy (gc time)/(mutator time) estimate.
func (r Table3Row) GCRatioSC() float64 {
	return float64(r.StopAndCopy.GCWorkWords) / (MutatorCostPerWord * float64(r.StopAndCopy.WordsAllocated))
}

// GCRatioGen returns the generational (gc time)/(mutator time) estimate.
func (r Table3Row) GCRatioGen() float64 {
	return float64(r.Generational.GCWorkWords) / (MutatorCostPerWord * float64(r.Generational.WordsAllocated))
}

// Table3Config tunes the harness.
type Table3Config struct {
	// SemiFactor sizes the stop-and-copy semispace as a multiple of the
	// measured peak, as the paper's per-benchmark semiheap choices did
	// (their ratios against estimated peak ranged from about 1.5 to 3).
	SemiFactor float64
	// NurseryDivisor sizes the generational collector's youngest
	// generation as total-allocation/NurseryDivisor; the paper's fixed
	// 1-megabyte nursery was roughly 1/40 of its benchmarks' allocation.
	NurseryDivisor uint64
	// MinNurseryWords and MaxNurseryWords clamp the nursery.
	MinNurseryWords, MaxNurseryWords int
}

// DefaultTable3Config mirrors the paper's setup at this repository's scale.
func DefaultTable3Config() Table3Config {
	return Table3Config{
		SemiFactor:      2.2,
		NurseryDivisor:  40,
		MinNurseryWords: 2048,
		MaxNurseryWords: 131072,
	}
}

// MeasurePeak runs p once on a small expandable heap (so collections are
// frequent and post-collection occupancy is sampled densely) and returns
// the peak live estimate — the calibration pass behind the paper's "peak
// storage (estimated)" column.
func MeasurePeak(p bench.Program, cfg Table3Config) (peak int, alloc uint64, err error) {
	h := heap.New()
	c := semispace.New(h, 4096, semispace.WithExpansion(2))
	res := bench.Measure(p, h, c)
	return res.PeakLiveWords, res.WordsAllocated, res.Err
}

// RunTable3Row measures one benchmark under both collectors.
func RunTable3Row(mk func() bench.Program, cfg Table3Config) (Table3Row, error) {
	peak, alloc, err := MeasurePeak(mk(), cfg)
	if err != nil {
		return Table3Row{}, err
	}
	nursery := int(alloc / cfg.NurseryDivisor)
	nursery = maxInt(cfg.MinNurseryWords, minInt(nursery, cfg.MaxNurseryWords))
	semi := maxInt(int(cfg.SemiFactor*float64(peak)), 5*nursery/2)

	// Stop-and-copy at the calibrated size.
	hSC := heap.New()
	cSC := semispace.New(hSC, semi, semispace.WithExpansion(cfg.SemiFactor))
	scRes := bench.Measure(mk(), hSC, cSC)
	if scRes.Err != nil {
		return Table3Row{}, scRes.Err
	}

	// Conventional generational: nursery plus an old area sized to touch a
	// little less storage than the stop-and-copy collector.
	hG := heap.New()
	old := maxInt(semi-nursery, 2*peak+2*nursery)
	cG := generational.New(hG, nursery, old, generational.WithExpansion(2))
	genRes := bench.Measure(mk(), hG, cG)
	if genRes.Err != nil {
		return Table3Row{}, genRes.Err
	}

	return Table3Row{
		Program:      scRes.Program,
		AllocWords:   scRes.WordsAllocated,
		PeakWords:    peak,
		SemiWords:    semi,
		StopAndCopy:  scRes,
		Generational: genRes,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
