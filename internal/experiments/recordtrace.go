package experiments

import (
	"fmt"
	"os"
	"strconv"

	"rdgc/internal/bench"
	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

// RecordBenchTrace records one benchmark program into path as an
// allocation-event trace, driven by the given collector (which one is
// immaterial: trace bytes are collector-independent). The header metadata
// carries the workload name and its comfortable heap size, which is all
// gctrace replay needs to reconstruct a sized collector grid. On any error
// the partial file is removed.
func RecordBenchTrace(path string, p bench.Program, nc gcfuzz.NamedCollector, census bool) (heap.Stats, error) {
	f, err := os.Create(path)
	if err != nil {
		return heap.Stats{}, err
	}
	meta := []trace.MetaEntry{
		{Key: "workload", Value: p.Name()},
		{Key: "heap_words", Value: strconv.Itoa(p.HeapWords())},
		{Key: "sizing", Value: "heapwords"},
		{Key: "collector", Value: nc.Name},
	}
	stats, err := trace.Record(f, census, meta, nc.New,
		func(h *heap.Heap, c heap.Collector) error {
			if err := p.Run(h); err != nil {
				return err
			}
			c.Collect() // end the trace on a collected heap, like the Table 3 cells
			return nil
		})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return stats, fmt.Errorf("recording %s: %w", p.Name(), err)
	}
	return stats, nil
}
