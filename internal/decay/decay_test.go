package decay

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

func TestSampleLifetimeMean(t *testing.T) {
	// A geometric lifetime with survival rate r has mean 1/(1−r), which is
	// the equilibrium population n (that coincidence is how equation (1)
	// falls out of Little's law).
	m := Model{H: 256}
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += float64(m.SampleLifetime(rng))
	}
	mean := sum / trials
	want := m.EquilibriumLive()
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean lifetime = %.1f, want about %.1f", mean, want)
	}
}

func TestSurvivalMatchesHalfLife(t *testing.T) {
	m := Model{H: 100}
	rng := rand.New(rand.NewSource(2))
	const trials = 100000
	survived := 0
	for i := 0; i < trials; i++ {
		if m.SampleLifetime(rng) > 100 {
			survived++
		}
	}
	got := float64(survived) / trials
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("P(live past one half-life) = %.3f, want 0.50", got)
	}
}

func TestDeathQueueOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		var q deathQueue
		for i, at := range times {
			q.push(death{at: uint64(at), slot: i})
		}
		var got []uint64
		for len(q) > 0 {
			got = append(got, q.pop().at)
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumPopulation(t *testing.T) {
	// Equation (1): live storage at equilibrium is about 1.4427·h objects.
	const h = 512.0
	heapObj := heap.New()
	semispace.New(heapObj, 1<<20)
	w := NewWorkload(heapObj, h, 42)
	w.Warmup(12)

	want := w.Model.EquilibriumLive()
	// Average the live population over a few half-lives to smooth noise.
	var sum float64
	const samples = 2000
	for i := 0; i < samples; i++ {
		w.Run(int(h) / 100)
		sum += float64(w.LiveObjects())
	}
	mean := sum / samples
	if math.Abs(mean-want)/want > 0.10 {
		t.Errorf("equilibrium live = %.1f objects, want about %.1f", mean, want)
	}
}

func TestAgeGivesNoInformation(t *testing.T) {
	// The defining property of the model: among objects alive now, the
	// young and the old survive the next interval at the same rate.
	m := Model{H: 200}
	rng := rand.New(rand.NewSource(7))
	const cohort = 60000
	interval := uint64(100)

	// "Young" objects alive at age 50, "old" objects alive at age 600:
	// measure each group's survival for `interval` more ticks.
	rate := func(age uint64) float64 {
		alive, survived := 0, 0
		for i := 0; i < cohort; i++ {
			lt := m.SampleLifetime(rng)
			if lt <= age {
				continue
			}
			alive++
			if lt > age+interval {
				survived++
			}
		}
		if alive == 0 {
			return math.NaN()
		}
		return float64(survived) / float64(alive)
	}
	young, old := rate(50), rate(600)
	want := m.Survival(float64(interval))
	if math.Abs(young-want) > 0.02 || math.Abs(old-want) > 0.03 {
		t.Errorf("survival young=%.3f old=%.3f, want both about %.3f", young, old, want)
	}
}

func TestWorkloadStructureIsConsistent(t *testing.T) {
	heapObj := heap.New()
	semispace.New(heapObj, 1<<18)
	w := NewWorkload(heapObj, 128, 3)
	w.Run(5000)
	live := 0
	for _, r := range w.slots {
		if heapObj.Get(r) != heap.NullWord {
			live++
		}
	}
	if live != w.LiveObjects() {
		t.Errorf("slot scan found %d live, counter says %d", live, w.LiveObjects())
	}
	if w.Clock() != 5000 {
		t.Errorf("clock = %d, want 5000", w.Clock())
	}
}

func TestLinkedWorkload(t *testing.T) {
	heapObj := heap.New()
	semispace.New(heapObj, 1<<18)
	w := NewWorkload(heapObj, 128, 4, WithLinking(0.5))
	w.Run(5000)
	// Some objects must have pair cdrs.
	linked := 0
	s := heapObj.Scope()
	defer s.Close()
	for _, r := range w.slots {
		if heapObj.Get(r) == heap.NullWord {
			continue
		}
		if heapObj.IsPair(heapObj.Cdr(r)) {
			linked++
		}
	}
	if linked == 0 {
		t.Error("WithLinking(0.5) produced no linked objects")
	}
}

func TestSizedWorkload(t *testing.T) {
	heapObj := heap.New()
	semispace.New(heapObj, 1<<19)
	w := NewWorkload(heapObj, 128, 5, WithSizes(2, 10))
	w.Run(5000)
	if got := w.AvgObjectWords(); got != 7 {
		t.Errorf("AvgObjectWords = %g, want 7", got)
	}
	// Objects must be vectors with payloads in range.
	s := heapObj.Scope()
	defer s.Close()
	checked := 0
	for _, r := range w.slots {
		if heapObj.Get(r) == heap.NullWord {
			continue
		}
		if !heapObj.IsVector(r) {
			t.Fatal("sized workload allocated a non-vector")
		}
		if n := heapObj.VectorLen(r); n < 2 || n > 10 {
			t.Fatalf("vector payload %d out of [2,10]", n)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing live to check")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, int) {
		heapObj := heap.New()
		c := semispace.New(heapObj, 1<<18)
		w := NewWorkload(heapObj, 128, 99)
		w.Run(20000)
		return heapObj.Stats.WordsAllocated, c.GCStats().Collections
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", a1, c1, a2, c2)
	}
}
