// Package decay implements the radioactive decay model of Section 2: every
// live object's remaining lifetime is exponentially distributed with a
// single half-life h, so an object's age carries no information about its
// future — the property that defeats every lifetime-prediction heuristic.
//
// Time is measured in allocated objects, as in the paper. The workload
// generator samples each new object's lifetime geometrically at birth
// (memorylessness makes the two formulations identical) and severs the
// object's root when its time arrives, leaving the garbage for whichever
// collector manages the heap.
package decay

import (
	"math"
	"math/rand"

	"rdgc/internal/heap"
)

// Model is the radioactive decay model with half-life H (in allocated
// objects). For every live object, P(alive after t more allocations) =
// 2^(−t/h).
type Model struct {
	H float64
}

// R returns the per-allocation survival probability r = 2^(−1/h).
func (m Model) R() float64 { return math.Exp2(-1 / m.H) }

// EquilibriumLive returns the expected number of live objects at
// equilibrium, n = 1/(1−r) ≈ h/ln 2 ≈ 1.4427·h (equation 1).
func (m Model) EquilibriumLive() float64 { return 1 / (1 - m.R()) }

// Survival returns 2^(−t/h), the probability an object lives t more ticks.
func (m Model) Survival(t float64) float64 { return math.Exp2(-t / m.H) }

// SampleLifetime draws a lifetime (in allocations) from the geometric
// distribution with survival rate r: the smallest t ≥ 1 with U > r^t.
func (m Model) SampleLifetime(rng *rand.Rand) uint64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	t := math.Ceil(math.Log(u) / math.Log(m.R()))
	if t < 1 {
		t = 1
	}
	return uint64(t)
}

// death is a scheduled root severing.
type death struct {
	at   uint64
	slot int
}

// deathQueue is a binary min-heap of deaths ordered by time.
type deathQueue []death

func (q *deathQueue) push(d death) {
	*q = append(*q, d)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*q)[parent].at <= (*q)[i].at {
			break
		}
		(*q)[parent], (*q)[i] = (*q)[i], (*q)[parent]
		i = parent
	}
}

func (q *deathQueue) pop() death {
	old := *q
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*q = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*q)[l].at < (*q)[small].at {
			small = l
		}
		if r < n && (*q)[r].at < (*q)[small].at {
			small = r
		}
		if small == i {
			break
		}
		(*q)[i], (*q)[small] = (*q)[small], (*q)[i]
		i = small
	}
	return top
}

// Workload drives a heap with radioactive-decay allocation. Each live
// object is held by exactly one global root slot; death clears the slot.
// Objects are pairs (car = a fixnum serial, cdr = empty or a link), so each
// object is ObjectWords words including its header.
type Workload struct {
	H     *heap.Heap
	Model Model

	rng   *rand.Rand
	queue deathQueue

	slots     []heap.Ref // global slots, one per potentially-live object
	freeSlots []int
	liveCount int

	clock uint64 // objects allocated

	// linkProb is the probability that a new object's cdr points to a
	// random live object, used by the remembered-set growth experiment
	// (§8.3). It perturbs liveness (a linked object stays reachable while
	// its referrer lives), so mark/cons experiments leave it zero.
	linkProb float64

	// sizeMin/sizeMax, when set, allocate vectors with payloads drawn
	// uniformly from [sizeMin, sizeMax] instead of pairs — the
	// object-size ablation. The analysis of Section 5 is stated in words,
	// so mark/cons ratios should not depend on the distribution.
	sizeMin, sizeMax int

	// infantProb mixes in infant mortality: with this probability a new
	// object's lifetime is drawn with half-life infantH instead of H. At
	// infantProb = 0 this is the pure radioactive decay model; at high
	// values it approximates the weak generational hypothesis of §7 while
	// the survivors still decay memorylessly.
	infantProb float64
	infantH    float64
}

// ObjectWords is the heap footprint of one workload object (header + car +
// cdr) when census tracking is off.
const ObjectWords = 3

// Option configures a Workload.
type Option func(*Workload)

// WithLinking sets the probability that a new object references a random
// live object.
func WithLinking(p float64) Option { return func(w *Workload) { w.linkProb = p } }

// WithSizes draws each object's payload uniformly from [min, max] words
// (allocated as vectors) instead of fixed-size pairs.
func WithSizes(min, max int) Option {
	if min < 1 || max < min {
		panic("decay: bad size range")
	}
	return func(w *Workload) { w.sizeMin, w.sizeMax = min, max }
}

// WithInfantMortality makes a fraction p of objects die with half-life
// infantH (objects) instead of the model's H.
func WithInfantMortality(p, infantH float64) Option {
	if p < 0 || p > 1 || infantH <= 0 {
		panic("decay: bad infant mortality parameters")
	}
	return func(w *Workload) { w.infantProb, w.infantH = p, infantH }
}

// AvgObjectWords returns the expected heap footprint of one object under
// the configured size distribution (census tracking off).
func (w *Workload) AvgObjectWords() float64 {
	if w.sizeMax == 0 {
		return ObjectWords
	}
	return 1 + float64(w.sizeMin+w.sizeMax)/2
}

// ExpectedLive returns the equilibrium live population (objects) under the
// configured lifetime mixture, by Little's law: the mean lifetime.
func (w *Workload) ExpectedLive() float64 {
	long := w.Model.EquilibriumLive()
	if w.infantProb == 0 {
		return long
	}
	short := Model{H: w.infantH}.EquilibriumLive()
	return w.infantProb*short + (1-w.infantProb)*long
}

func (w *Workload) sampleLifetime() uint64 {
	if w.infantProb > 0 && w.rng.Float64() < w.infantProb {
		return Model{H: w.infantH}.SampleLifetime(w.rng)
	}
	return w.Model.SampleLifetime(w.rng)
}

// NewWorkload creates a decay workload over heap h with the given
// half-life (in objects) and deterministic seed.
func NewWorkload(h *heap.Heap, halfLife float64, seed int64, opts ...Option) *Workload {
	w := &Workload{
		H:     h,
		Model: Model{H: halfLife},
		rng:   rand.New(rand.NewSource(seed)),
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Clock returns the number of objects allocated so far.
func (w *Workload) Clock() uint64 { return w.clock }

// LiveObjects returns the number of objects whose roots are still set.
func (w *Workload) LiveObjects() int { return w.liveCount }

// Step allocates one object with a sampled lifetime, after severing the
// roots of every object whose death time has arrived.
func (w *Workload) Step() {
	for len(w.queue) > 0 && w.queue[0].at <= w.clock {
		d := w.queue.pop()
		w.H.Set(w.slots[d.slot], heap.NullWord)
		w.freeSlots = append(w.freeSlots, d.slot)
		w.liveCount--
	}

	s := w.H.Scope()
	cdr := w.H.Null()
	if w.linkProb > 0 && w.liveCount > 0 && w.rng.Float64() < w.linkProb {
		if slot := w.randomLiveSlot(); slot >= 0 {
			cdr = w.H.Dup(w.slots[slot])
		}
	}
	var obj heap.Ref
	if w.sizeMax > 0 {
		size := w.sizeMin + w.rng.Intn(w.sizeMax-w.sizeMin+1)
		obj = w.H.MakeVector(size, cdr)
	} else {
		obj = w.H.Cons(w.H.Fix(int64(w.clock)), cdr)
	}

	slot := w.takeSlot()
	w.H.Set(w.slots[slot], w.H.Get(obj))
	s.Close()

	w.clock++
	w.liveCount++
	w.queue.push(death{at: w.clock + w.sampleLifetime(), slot: slot})
}

func (w *Workload) takeSlot() int {
	if n := len(w.freeSlots); n > 0 {
		slot := w.freeSlots[n-1]
		w.freeSlots = w.freeSlots[:n-1]
		return slot
	}
	w.slots = append(w.slots, w.H.GlobalWord(heap.NullWord))
	return len(w.slots) - 1
}

// randomLiveSlot samples a uniformly random occupied slot, or -1 if the
// occupancy is too sparse to find one quickly.
func (w *Workload) randomLiveSlot() int {
	for tries := 0; tries < 16; tries++ {
		slot := w.rng.Intn(len(w.slots))
		if w.H.Get(w.slots[slot]) != heap.NullWord {
			return slot
		}
	}
	return -1
}

// Run performs n allocation steps.
func (w *Workload) Run(n int) {
	for i := 0; i < n; i++ {
		w.Step()
	}
}

// Warmup runs the workload for the given number of half-lives so the live
// population reaches its equilibrium of about 1.4427·h objects.
func (w *Workload) Warmup(halfLives float64) {
	w.Run(int(halfLives * w.Model.H))
}
