// Package analytic implements the closed-form analysis of Section 5 of the
// paper: the limiting live fraction l(f,g), the expected mark/cons ratio of
// the non-predictive collector (Theorem 4), its ratio to the
// non-generational collector's 1/(L-1) (Corollary 5), and the fixed-point
// lower bound of equation (4) used where Theorem 4's hypotheses fail.
//
// Conventions follow the paper: L is the inverse load factor (heap size
// divided by live storage at equilibrium), g = j/k is the fraction of the
// heap devoted to the uncollected young generation, and f (0 ≤ f ≤ g) is
// the fraction of the heap that is *free* in steps 1..j right after a
// collection. Under the recommended policy steps 1..j are empty after every
// collection, so f = g.
//
// A useful simplification the paper leaves implicit: since r^(Nf) with
// r = 2^(-1/h) and N ≈ hL/ln 2 gives 2^(-Lf/ln 2) = e^(-Lf), the limiting
// live fraction is
//
//	l(f,g) = 1 − e^(−Lf)·(1 − L(g−f))
//
// independent of the half-life h (that independence is Theorem 3).
package analytic

import (
	"errors"
	"math"
)

// LiveFraction returns l(f,g): the fraction of the live storage expected to
// reside in steps 1..j at the beginning of the next collection, in the
// large-h limit (Theorem 3).
func LiveFraction(f, g, L float64) float64 {
	return 1 - math.Exp(-L*f)*(1-L*(g-f))
}

// Theorem4Holds reports whether the hypotheses of Theorem 4 are satisfied:
// f = g (implied by the recommended policy), g ≤ 1/2, and
// L(1−2g) ≥ 1 − l(g,g), i.e. the space reclaimed by a collection refills
// steps 1..j completely so the equilibrium is stable.
func Theorem4Holds(g, L float64) bool {
	return g <= 0.5 && L*(1-2*g) >= 1-LiveFraction(g, g, L)
}

// MarkCons returns Theorem 4's expected mark/cons ratio for the
// non-predictive collector with f = g:
//
//	(1 − l(g,g)) / (L(1−g) − (1 − l(g,g)))
//
// It is exact (in the limit) only where Theorem4Holds; callers wanting a
// value everywhere should use MarkConsEstimate.
func MarkCons(g, L float64) float64 {
	u := 1 - LiveFraction(g, g, L) // = e^(−Lg)
	return u / (L*(1-g) - u)
}

// NonGenerationalMarkCons returns the mark/cons ratio 1/(L−1) of a
// non-generational mark/sweep collector at inverse load factor L.
func NonGenerationalMarkCons(L float64) float64 { return 1 / (L - 1) }

// Relative returns Corollary 5's ratio of the non-predictive collector's
// mark/cons overhead to the non-generational collector's. Values below 1
// mean the non-predictive collector wins.
func Relative(g, L float64) float64 {
	return MarkCons(g, L) * (L - 1)
}

// ErrNoFixedPoint reports that equation (4)'s iteration failed to converge.
var ErrNoFixedPoint = errors.New("analytic: fixed-point iteration did not converge")

// FixedPointF solves equation (4) for f:
//
//	f = max(0, min(1 − g + (l(f,g)−1)/L, g))
//
// by damped iteration from f = g.
func FixedPointF(g, L float64) (float64, error) {
	f := g
	for i := 0; i < 10000; i++ {
		next := 1 - g + (LiveFraction(f, g, L)-1)/L
		if next > g {
			next = g
		}
		if next < 0 {
			next = 0
		}
		next = f + 0.5*(next-f) // damping stabilizes oscillation near g=1/2
		if math.Abs(next-f) < 1e-12 {
			return next, nil
		}
		f = next
	}
	return f, ErrNoFixedPoint
}

// MarkConsLowerBound divides expression (2) by expression (3) at the fixed
// point of equation (4): the expected live words in steps j+1..k over the
// expected reclaimed words. As the paper notes, the result is a lower
// bound on the true mark/cons ratio when Theorem 4's hypotheses fail.
func MarkConsLowerBound(g, L float64) (float64, error) {
	f, err := FixedPointF(g, L)
	if err != nil {
		return 0, err
	}
	l := LiveFraction(f, g, L)
	return (1 - l) / (L*(1-g) - 1 + l), nil
}

// RelativeEstimate returns Corollary 5's ratio where Theorem 4 holds, and
// the fixed-point lower bound times (L−1) elsewhere, with exact reporting
// of which case applied. This reproduces Figure 1's thin (exact) and thick
// (lower bound) curves.
func RelativeEstimate(g, L float64) (ratio float64, exact bool, err error) {
	if Theorem4Holds(g, L) {
		return Relative(g, L), true, nil
	}
	mc, err := MarkConsLowerBound(g, L)
	if err != nil {
		return 0, false, err
	}
	return mc * (L - 1), false, nil
}

// BestG numerically minimizes the relative overhead over g ∈ (0, 1/2],
// returning the optimal generation fraction and the overhead there.
func BestG(L float64) (g, ratio float64) {
	bestG, best := 0.0, math.Inf(1)
	for i := 1; i <= 500; i++ {
		gi := float64(i) / 1000
		r, _, err := RelativeEstimate(gi, L)
		if err != nil {
			continue
		}
		if r < best {
			best, bestG = r, gi
		}
	}
	return bestG, best
}

// EquilibriumLive returns equation (1)'s expected live objects at
// equilibrium for half-life h: n = 1/(1−r) ≈ h/ln 2 ≈ 1.4427·h.
func EquilibriumLive(h float64) float64 { return h / math.Ln2 }

// SurvivalProbability returns 2^(−t/h): the probability that an object
// alive now is still alive after t more allocations.
func SurvivalProbability(t, h float64) float64 { return math.Exp2(-t / h) }

// Figure1Point is one sample of Figure 1.
type Figure1Point struct {
	G     float64 // generation fraction g = j/k
	L     float64 // inverse load factor
	Ratio float64 // non-predictive overhead / non-generational overhead
	Exact bool    // true on the thin (Theorem 4) part of the curve
}

// Figure1Series samples the Figure 1 curve for one inverse load factor L at
// the given g values (typically a sweep of (0, 0.5]).
func Figure1Series(L float64, gs []float64) []Figure1Point {
	out := make([]Figure1Point, 0, len(gs))
	for _, g := range gs {
		r, exact, err := RelativeEstimate(g, L)
		if err != nil {
			continue
		}
		out = append(out, Figure1Point{G: g, L: L, Ratio: r, Exact: exact})
	}
	return out
}

// SweepG returns n evenly spaced g values in (0, 0.5].
func SweepG(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.5 * float64(i+1) / float64(n)
	}
	return out
}
