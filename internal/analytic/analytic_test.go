package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLiveFractionBasics(t *testing.T) {
	if got := LiveFraction(0, 0, 3); got != 0 {
		t.Errorf("l(0,0) = %g, want 0", got)
	}
	// With f = g, l(g,g) = 1 − e^(−Lg).
	for _, g := range []float64{0.1, 0.25, 0.5} {
		for _, L := range []float64{1.5, 2, 4, 8} {
			want := 1 - math.Exp(-L*g)
			if got := LiveFraction(g, g, L); math.Abs(got-want) > 1e-12 {
				t.Errorf("l(%g,%g;L=%g) = %g, want %g", g, g, L, got, want)
			}
		}
	}
}

func TestLiveFractionMonotoneInF(t *testing.T) {
	// dl/df = −L²(g−f)e^(−Lf) ≤ 0 on [0,g]: more free space in the young
	// steps delays the next collection, giving the pre-existing young
	// occupants longer to decay, so the live fraction found there falls.
	f := func(a, b uint8) bool {
		g := 0.5
		L := 3.0
		f1 := g * float64(a%101) / 100
		f2 := g * float64(b%101) / 100
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		return LiveFraction(f1, g, L) >= LiveFraction(f2, g, L)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// liveH computes live_h(f,g)/n exactly from the paper's finite sum, before
// any large-h approximation: sum_{t=1..Nf} r^t + N(g−f)·r^(Nf), over n.
func liveH(h, f, g, L float64) float64 {
	r := math.Exp2(-1 / h)
	n := 1 / (1 - r)
	N := n * L
	Nf := math.Round(N * f)
	sum := r * (1 - math.Pow(r, Nf)) / (1 - r)
	sum += N * (g - f) * math.Pow(r, Nf)
	return sum / n
}

func TestTheorem3Convergence(t *testing.T) {
	// live_h(f,g)/n → l(f,g) as h → ∞.
	cases := []struct{ f, g, L float64 }{
		{0.2, 0.2, 3}, {0.1, 0.3, 3}, {0.4, 0.5, 2}, {0.05, 0.05, 8},
	}
	for _, c := range cases {
		limit := LiveFraction(c.f, c.g, c.L)
		prevErr := math.Inf(1)
		for _, h := range []float64{100, 1000, 10000, 100000} {
			e := math.Abs(liveH(h, c.f, c.g, c.L) - limit)
			if e > prevErr+1e-9 {
				t.Errorf("f=%g g=%g L=%g: error grew from %g to %g at h=%g",
					c.f, c.g, c.L, prevErr, e, h)
			}
			prevErr = e
		}
		if prevErr > 1e-3 {
			t.Errorf("f=%g g=%g L=%g: live_h/n did not converge to l (err %g)",
				c.f, c.g, c.L, prevErr)
		}
	}
}

func TestRelativeApproachesOneAsGVanishes(t *testing.T) {
	// With no young generation the non-predictive collector is just a
	// non-generational collector, so the relative overhead tends to 1.
	for _, L := range []float64{1.5, 2, 3, 4, 8} {
		if got := Relative(1e-9, L); math.Abs(got-1) > 1e-6 {
			t.Errorf("Relative(g→0, L=%g) = %g, want 1", L, got)
		}
	}
}

func TestNonPredictiveBeatsNonGenerational(t *testing.T) {
	// The paper's main theoretical result: for every sensible L there is a
	// g where the relative overhead is below 1.
	for _, L := range []float64{1.5, 2, 3, 4, 6, 8} {
		g, ratio := BestG(L)
		if ratio >= 1 {
			t.Errorf("L=%g: best relative overhead %g at g=%g, want < 1", L, ratio, g)
		}
		if g <= 0 || g > 0.5 {
			t.Errorf("L=%g: best g=%g out of range", L, g)
		}
	}
}

func TestTheorem4Region(t *testing.T) {
	// At g = 1/2 the condition L(1−2g) ≥ 1−l becomes 0 ≥ e^(−L/2): false.
	for _, L := range []float64{1.5, 3, 8} {
		if Theorem4Holds(0.5, L) {
			t.Errorf("Theorem4Holds(0.5, %g) = true, want false", L)
		}
	}
	// For small g it holds for all L > 1.
	for _, L := range []float64{1.5, 3, 8} {
		if !Theorem4Holds(0.05, L) {
			t.Errorf("Theorem4Holds(0.05, %g) = false, want true", L)
		}
	}
}

func TestFixedPointEqualsGWhereTheorem4Holds(t *testing.T) {
	for _, L := range []float64{2, 3, 6} {
		for _, g := range []float64{0.05, 0.15, 0.25} {
			if !Theorem4Holds(g, L) {
				continue
			}
			f, err := FixedPointF(g, L)
			if err != nil {
				t.Fatalf("g=%g L=%g: %v", g, L, err)
			}
			if math.Abs(f-g) > 1e-9 {
				t.Errorf("g=%g L=%g: fixed point f=%g, want g", g, L, f)
			}
		}
	}
}

func TestLowerBoundBelowExactWhereBothDefined(t *testing.T) {
	for _, L := range []float64{2, 3, 6} {
		for _, g := range []float64{0.3, 0.4, 0.45, 0.5} {
			lb, err := MarkConsLowerBound(g, L)
			if err != nil {
				t.Fatalf("g=%g L=%g: %v", g, L, err)
			}
			if Theorem4Holds(g, L) {
				exact := MarkCons(g, L)
				if lb > exact+1e-9 {
					t.Errorf("g=%g L=%g: lower bound %g exceeds exact %g", g, L, lb, exact)
				}
			}
			if lb < 0 {
				t.Errorf("g=%g L=%g: negative lower bound %g", g, L, lb)
			}
		}
	}
}

func TestRelativeEstimateFinite(t *testing.T) {
	f := func(gi, li uint16) bool {
		g := 0.005 + 0.495*float64(gi)/65535
		L := 1.2 + 8.8*float64(li)/65535
		r, _, err := RelativeEstimate(g, L)
		return err == nil && r > 0 && !math.IsInf(r, 0) && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumLive(t *testing.T) {
	if got := EquilibriumLive(1024); math.Abs(got-1477.3) > 0.5 {
		t.Errorf("EquilibriumLive(1024) = %g, want about 1477.3 (1.4427h)", got)
	}
}

func TestFigure1Series(t *testing.T) {
	gs := SweepG(50)
	if len(gs) != 50 || gs[0] <= 0 || gs[49] != 0.5 {
		t.Fatalf("SweepG malformed: %v...%v", gs[0], gs[49])
	}
	pts := Figure1Series(3, gs)
	if len(pts) != 50 {
		t.Fatalf("series has %d points, want 50", len(pts))
	}
	// The curve must dip below 1 somewhere and be exact at small g.
	min := math.Inf(1)
	for _, p := range pts {
		if p.Ratio < min {
			min = p.Ratio
		}
	}
	if min >= 1 {
		t.Errorf("Figure 1 series for L=3 never dips below 1 (min %g)", min)
	}
	if !pts[0].Exact {
		t.Error("smallest-g point should be in the exact (Theorem 4) region")
	}
}

func TestSurvivalProbability(t *testing.T) {
	if got := SurvivalProbability(1024, 1024); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("one half-life survival = %g, want 0.5", got)
	}
	if got := SurvivalProbability(2048, 1024); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("two half-lives survival = %g, want 0.25", got)
	}
}
