package analytic_test

import (
	"fmt"

	"rdgc/internal/analytic"
)

// Corollary 5 in action: at an inverse load factor of 3.5 with a quarter of
// the heap devoted to the uncollected young generation, the non-predictive
// collector does less than half the work of a non-generational collector —
// under a lifetime model where no heuristic can predict anything.
func ExampleRelative() {
	fmt.Printf("non-generational mark/cons: %.3f\n", analytic.NonGenerationalMarkCons(3.5))
	fmt.Printf("non-predictive mark/cons:   %.3f\n", analytic.MarkCons(0.25, 3.5))
	fmt.Printf("relative overhead:          %.3f\n", analytic.Relative(0.25, 3.5))
	// Output:
	// non-generational mark/cons: 0.400
	// non-predictive mark/cons:   0.189
	// relative overhead:          0.472
}

// Equation (1): the live population at equilibrium is about 1.4427 times
// the half-life.
func ExampleEquilibriumLive() {
	fmt.Printf("%.0f\n", analytic.EquilibriumLive(1024))
	// Output: 1477
}

// Theorem 4's hypotheses hold for small g and fail toward g = 1/2, where
// Figure 1 switches from thin (exact) to thick (lower bound) lines.
func ExampleTheorem4Holds() {
	fmt.Println(analytic.Theorem4Holds(0.1, 3))
	fmt.Println(analytic.Theorem4Holds(0.5, 3))
	// Output:
	// true
	// false
}
